package net

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"
)

// This file implements run-to-quiescence stepping, the deterministic
// goroutine-step scheduler that extends the byte-reproducibility contract
// from schedule-determined outcomes to full traces.
//
// In step mode (the default; see WithFreeRunning for the ablation) every
// scheduler-visible goroutine in the network is a Task, and exactly one of
// the dispatcher or a single granted task runs at any moment. The dispatcher
// pops ONE event, delivers it, then grants every task the delivery woke — in
// deterministic FIFO wake order, one at a time, waiting for each to park or
// exit — before popping the next event. Quiescence is a positive handshake:
// a task is either parked in Await (having returned the scheduling token) or
// running with the token; the ready queue being empty IS the proof that every
// goroutine is parked on a runtime primitive. This replaces the gapYields
// yield-loop and the unbuffered-timer backpressure heuristics of free-running
// mode with an exact protocol.
//
// Because task execution is serialized, every event-queue push (sequence
// number, RNG draw) and every logical-clock tick happens in an order that is
// a pure function of the seed and the initial schedule — which is what makes
// the trace fingerprint below byte-reproducible, crash events included.

// taskState is the lifecycle of a Task with respect to the scheduling token.
type taskState uint8

const (
	// taskReady: woken (or newly spawned) and queued for a grant.
	taskReady taskState = iota + 1
	// taskGranted: running — the stepper committed the token to it. An
	// escaped task also carries this state (it runs without the token, on a
	// teardown path where determinism is already forfeit).
	taskGranted
	// taskParked: blocked in Await, token returned to the dispatcher.
	taskParked
	// taskDone: exited.
	taskDone
)

// Task is one scheduler-visible goroutine: a protocol runner, a detector
// loop, a register server — anything that takes steps between event
// deliveries. Tasks are created with Network.Go / Network.GoGroup (spawned
// goroutines) or AdoptTask (the calling goroutine submits to the step
// discipline for the duration of one operation).
//
// A nil *Task is valid everywhere and means "free-running mode": Wake is a
// no-op and wait sites must use their legacy channel selects instead of
// Await. Protocol code branches on TaskFrom(ctx) != nil.
type Task struct {
	id    uint64
	name  string
	ep    *Endpoint
	s     *stepper
	group bool
	grant chan struct{} // stepper -> task, capacity 1

	mu      sync.Mutex
	state   taskState
	escaped bool
	wakes   uint64 // wake credits issued
	seen    uint64 // wake credits consumed by Await
}

// Wake credits the task with one wakeup. If it is parked it joins the ready
// queue (FIFO — wakers are serialized by the step discipline, so the order is
// deterministic); if it is running the credit makes its next Await return
// immediately, so a wakeup issued between a condition check and the park can
// never be lost. Wake on a nil, done or already-ready task is a no-op beyond
// the credit.
func (t *Task) Wake() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.wakes++
	if t.state != taskParked {
		t.mu.Unlock()
		return
	}
	t.state = taskReady
	t.mu.Unlock()
	t.s.enqueue(t)
}

// Await is the park point: it returns the scheduling token to the dispatcher
// and blocks until the next Wake is granted. If a wake credit is already
// pending (issued while the task was running) it returns immediately without
// yielding. Callers use the condition-recheck idiom:
//
//	for {
//		if done() { return }
//		t.Await(ctx)
//	}
//
// ctx is the escape hatch for wall-clock teardown (the scenario timeout): if
// it fires while the task is parked, the task resumes WITHOUT the token,
// marks the trace tainted, and every subsequent Await returns immediately so
// the caller's next condition check can observe ctx.Err() and unwind. A nil
// ctx is allowed; the network-close abort remains as the final escape.
func (t *Task) Await(ctx context.Context) {
	t.mu.Lock()
	if t.escaped {
		t.mu.Unlock()
		return
	}
	if t.seen < t.wakes {
		t.seen = t.wakes
		t.mu.Unlock()
		return
	}
	t.state = taskParked
	t.mu.Unlock()
	t.s.yieldCh <- struct{}{}
	t.block(ctx)
}

// block waits for the grant that follows a wake (or for an escape). It is
// also the initial wait of a freshly spawned or adopted task, which is why it
// is separate from Await: a new task has no token to yield yet.
func (t *Task) block(ctx context.Context) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-t.grant:
		t.mu.Lock()
		t.seen = t.wakes
		t.mu.Unlock()
	case <-done:
		t.escape()
	case <-t.s.abort:
		t.escape()
	}
}

// escape resumes the task without a grant. It taints the trace (the cut
// point of a wall-clock interruption is not reproducible) and, if the
// stepper had already committed a grant, consumes the token and hands it
// straight back so the dispatcher never waits on an escaped task.
func (t *Task) escape() {
	t.s.taint(t)
	t.mu.Lock()
	switch t.state {
	case taskParked, taskReady:
		t.escaped = true
		t.state = taskGranted
		t.mu.Unlock()
	case taskGranted:
		t.escaped = true
		t.mu.Unlock()
		<-t.grant
		t.s.yieldCh <- struct{}{}
	default:
		t.mu.Unlock()
	}
}

// exit ends the task. A cleanly exiting task still holds the token: its exit
// is recorded into the trace and the token is returned; an escaped exit only
// updates the group countdown (it must not touch the digest, which the
// dispatcher may be writing concurrently).
func (t *Task) exit() {
	t.mu.Lock()
	if t.state == taskDone {
		t.mu.Unlock()
		return
	}
	escaped := t.escaped
	t.state = taskDone
	t.mu.Unlock()
	if escaped {
		t.s.taint(t)
		t.s.groupExit(t, false)
		return
	}
	t.s.recordExit(t)
	t.s.groupExit(t, true)
	t.s.yieldCh <- struct{}{}
}

// taskCtxKey carries a Task through a context so protocol entry points
// (Propose, Vote, Read, Write, ...) reach their caller's task without
// signature changes.
type taskCtxKey struct{}

// WithTask returns a context carrying t. scenario.Run uses it to hand each
// runner goroutine its task; AdoptTask uses it so nested protocol calls share
// the adopter's task instead of adopting again.
func WithTask(ctx context.Context, t *Task) context.Context {
	return context.WithValue(ctx, taskCtxKey{}, t)
}

// TaskFrom returns the task carried by ctx, or nil (free-running mode, or a
// caller outside the step discipline).
func TaskFrom(ctx context.Context) *Task {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(taskCtxKey{}).(*Task)
	return t
}

// AdoptTask submits the calling goroutine to the step discipline for the
// duration of one operation: it blocks until the dispatcher grants it a
// first step, returns a context carrying the new task plus a release
// function that must be called (deferred) when the operation returns. In
// free-running mode, or when ctx already carries a task, it is a no-op.
//
// This is what keeps raw-network callers (benchmarks, package tests calling
// Propose from plain goroutines) inside the deterministic protocol: without
// adoption their sends would race the dispatcher's steps.
func AdoptTask(ctx context.Context, ep *Endpoint, name string) (context.Context, func()) {
	nw := ep.net
	if nw.stepper == nil || TaskFrom(ctx) != nil {
		return ctx, func() {}
	}
	t := nw.stepper.newTask(ep, name, false)
	ep.registerTask(t)
	nw.stepper.enqueue(t)
	t.block(ctx)
	return WithTask(ctx, t), t.exit
}

// TaskWaiter is the single-waiter wake registration protocol code pairs with
// its capacity-1 notification channels: the waiting side registers its task
// around the wait loop, the notifying side (typically a Handle-mode handler
// running on the dispatcher) calls Wake alongside its channel send. All
// methods are safe on a nil task and under concurrent use.
type TaskWaiter struct {
	mu sync.Mutex
	t  *Task
}

// Set registers t as the waiter (nil is a no-op, keeping free-running call
// sites branch-free).
func (w *TaskWaiter) Set(t *Task) {
	if t == nil {
		return
	}
	w.mu.Lock()
	w.t = t
	w.mu.Unlock()
}

// Clear unregisters the waiter.
func (w *TaskWaiter) Clear() {
	w.mu.Lock()
	w.t = nil
	w.mu.Unlock()
}

// Wake wakes the registered waiter, if any.
func (w *TaskWaiter) Wake() {
	w.mu.Lock()
	t := w.t
	w.mu.Unlock()
	t.Wake()
}

// TraceStats are the step-trace shape counters: cheap, schedule-determined
// aggregates of a finalized trace, suitable for bucketing into exploration
// novelty signatures without dragging the full fingerprint (which changes on
// every config perturbation) along.
type TraceStats struct {
	Events   int64 // events delivered before the trace boundary
	Messages int64
	Timers   int64
	Crashes  int64
	Grants   int64 // task steps granted
	// TaintReason is why the trace was forfeited, when it was: the first
	// wall-clock escape that tainted the run, naming the task and process.
	// Empty for a clean trace (and in free-running mode, which never arms
	// one). When set, the counters above are zero and the fingerprint is
	// empty — the reason is the only thing a tainted run can honestly report.
	TaintReason string
}

// Trace record ops: the three record types of the step trace, using the same
// byte the digest encoding leads with.
const (
	TraceOpEvent byte = 'E' // one delivered event
	TraceOpGrant byte = 'G' // one task step grant
	TraceOpExit  byte = 'X' // one clean task exit
)

// Trace event kinds for TraceOpEvent records, matching the scheduler's
// internal event kinds (and the byte the digest encoding uses).
const (
	TraceKindMessage = byte(evMessage)
	TraceKindTimer   = byte(evTimer)
	TraceKindCrash   = byte(evCrash)
)

// TraceRecord is one record of the step trace — exactly what the trace digest
// hashes, in structured form. The stream of TraceRecords a run produces is
// trace-tier: a pure function of (seed, config) in step mode, byte-identical
// across runs. Fields beyond Op are populated per record type:
//
//   - TraceOpEvent: Kind, At, Seq, then per kind — message: From, To,
//     Instance, Type; timer: Tid (the run-local lease id); crash: To.
//   - TraceOpGrant, TraceOpExit: Task (the granted/exiting task's id).
//
// SentAt, Proc and Group are observational extras for streaming analyzers
// (internal/probe): they are fully determined by the hashed fields plus the
// seeded schedule, so they ride outside AppendHash — the digest encoding, and
// with it every recorded fingerprint, is unchanged by their existence.
//
//   - SentAt (message events): the virtual time the message was enqueued, so
//     At-SentAt is the delay the seeded RNG actually drew for this delivery.
//   - Proc (grants and exits): the process id owning the granted/exiting task.
//   - Group (exits): whether the exiting task belongs to the trace group —
//     i.e. whether this exit is a protocol runner's decision point.
type TraceRecord struct {
	Op       byte
	Kind     byte
	At       int64
	Seq      uint64
	From     uint64
	To       uint64
	Instance string
	Type     string
	Tid      uint64
	Task     uint64
	SentAt   int64
	Proc     uint64
	Group    bool
}

// AppendHash appends the record's trace-digest encoding to b — the exact
// bytes the streaming SHA-256 consumes for this record. Journal verification
// recomputes fingerprints through this single definition, so the journal and
// the hash cannot drift apart.
func (r *TraceRecord) AppendHash(b []byte) []byte {
	switch r.Op {
	case TraceOpEvent:
		b = append(b, TraceOpEvent, r.Kind)
		b = binary.LittleEndian.AppendUint64(b, uint64(r.At))
		b = binary.LittleEndian.AppendUint64(b, r.Seq)
		switch r.Kind {
		case TraceKindMessage:
			b = binary.LittleEndian.AppendUint64(b, r.From)
			b = binary.LittleEndian.AppendUint64(b, r.To)
			b = binary.LittleEndian.AppendUint64(b, uint64(len(r.Instance)))
			b = append(b, r.Instance...)
			b = binary.LittleEndian.AppendUint64(b, uint64(len(r.Type)))
			b = append(b, r.Type...)
		case TraceKindTimer:
			b = binary.LittleEndian.AppendUint64(b, r.Tid)
		case TraceKindCrash:
			b = binary.LittleEndian.AppendUint64(b, r.To)
		}
	case TraceOpGrant, TraceOpExit:
		b = append(b, r.Op)
		b = binary.LittleEndian.AppendUint64(b, r.Task)
	}
	return b
}

// TraceRecorder observes the step trace record-by-record, beside the digest:
// every record the trace hash sees is passed to Record, in hash order,
// before delivery/grant takes effect. Calls are serialized by the scheduling
// token (the dispatcher writes event and grant records, a cleanly exiting
// task writes its exit record while still holding the token), so
// implementations need no locking — but Record runs on the scheduler's
// critical path and must not block.
type TraceRecorder interface {
	Record(TraceRecord)
}

// stepper is the run-to-quiescence scheduler state owned by a step-mode
// Network: the deterministic ready queue, the grant/yield token protocol and
// the streaming trace digest.
type stepper struct {
	q *eventQueue

	mu        sync.Mutex
	ready     []*Task
	readyHead int
	nextID    uint64

	yieldCh chan struct{} // granted task -> dispatcher: parked or exited
	abort   chan struct{} // closed on Network.Close; releases every blocked task
	abortMu sync.Mutex
	aborted bool

	// Trace digest. Writers are the dispatcher (event and grant records) and
	// cleanly exiting tasks (exit records, written while still holding the
	// token), so all writes are serialized by the token handoff; no lock.
	// rec, when non-nil, observes the same serialized record stream.
	tracing   atomic.Bool
	finalized atomic.Bool
	tainted   atomic.Bool
	digest    hash.Hash
	buf       [64]byte
	stats     TraceStats
	rec       TraceRecorder

	// taintReason is the first escape's description (first-wins: later
	// escapes are downstream of the first cut). Guarded by taintMu because
	// escapes happen off the token discipline by definition.
	taintMu     sync.Mutex
	taintReason string

	groupMu    sync.Mutex
	groupLeft  int
	groupDone  chan struct{}
	final      string
	finalStats TraceStats
}

func newStepper(q *eventQueue, rec TraceRecorder) *stepper {
	return &stepper{
		q:         q,
		yieldCh:   make(chan struct{}, 1),
		abort:     make(chan struct{}),
		digest:    sha256.New(),
		groupDone: make(chan struct{}),
		rec:       rec,
	}
}

// taint forfeits the trace, recording why (first-wins). The reason names the
// escaping task and its process — the diagnostic a tainted journal surfaces
// instead of a confusing divergence.
func (s *stepper) taint(t *Task) {
	s.tainted.Store(true)
	s.taintMu.Lock()
	if s.taintReason == "" {
		s.taintReason = fmt.Sprintf("wall-clock escape: task %q (process %d) resumed outside the step discipline (context cancelled or network closed)", t.name, int(t.ep.id))
	}
	s.taintMu.Unlock()
}

func (s *stepper) newTask(ep *Endpoint, name string, group bool) *Task {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	return &Task{
		id:    id,
		name:  name,
		ep:    ep,
		s:     s,
		group: group,
		grant: make(chan struct{}, 1),
		state: taskReady,
	}
}

// enqueue appends t to the ready queue and pokes the dispatcher, which may be
// idle-waiting for work.
func (s *stepper) enqueue(t *Task) {
	s.mu.Lock()
	s.ready = append(s.ready, t)
	s.mu.Unlock()
	s.q.poke(s.q.notify)
}

// readyPending reports whether any task awaits a grant.
func (s *stepper) readyPending() bool {
	s.mu.Lock()
	pending := s.readyHead < len(s.ready)
	s.mu.Unlock()
	return pending
}

// popReady removes and returns the oldest ready task, or nil.
func (s *stepper) popReady() *Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readyHead >= len(s.ready) {
		return nil
	}
	t := s.ready[s.readyHead]
	s.ready[s.readyHead] = nil
	s.readyHead++
	if s.readyHead == len(s.ready) {
		s.ready = s.ready[:0]
		s.readyHead = 0
	}
	return t
}

// runReady grants every ready task, one at a time, in FIFO order, waiting for
// each to park or exit before the next — the quiescence handshake. It returns
// only when the ready queue is empty, i.e. every scheduler-visible goroutine
// is parked on a runtime primitive and it is sound to pop the next event.
// Called only by the dispatcher.
func (s *stepper) runReady() {
	for {
		t := s.popReady()
		if t == nil {
			return
		}
		t.mu.Lock()
		if t.state != taskReady {
			// Escaped (or exited) between wake and grant: skip without
			// committing the token.
			t.mu.Unlock()
			continue
		}
		t.state = taskGranted
		t.mu.Unlock()
		s.recordGrant(t)
		t.grant <- struct{}{}
		<-s.yieldCh
	}
}

// abortAll releases every task blocked in block(); called by Network.Close.
func (s *stepper) abortAll() {
	s.abortMu.Lock()
	if !s.aborted {
		s.aborted = true
		close(s.abort)
	}
	s.abortMu.Unlock()
}

// beginTraceGroup arms trace recording and declares that n group tasks
// (Network.GoGroup) will exit before the trace is finalized. The scenario
// harness registers its n runners as the group: the trace boundary is the
// last runner's exit — a deterministic trace point — rather than "whenever
// the driver goroutine happened to look", which would cut the digest at a
// wall-clock race.
func (s *stepper) beginTraceGroup(n int) {
	s.groupMu.Lock()
	s.groupLeft = n
	s.groupMu.Unlock()
	s.tracing.Store(true)
}

// groupExit retires one group task. When the last one exits the trace is
// finalized: if every exit was clean and no escape tainted the run, the
// digest is snapshotted (the exiting task still holds the token, so the read
// cannot race the dispatcher's writes); otherwise the fingerprint stays
// empty. groupDone is closed either way, releasing TraceResult.
func (s *stepper) groupExit(t *Task, clean bool) {
	if !t.group {
		return
	}
	s.groupMu.Lock()
	s.groupLeft--
	last := s.groupLeft == 0
	s.groupMu.Unlock()
	if !last {
		return
	}
	if clean && !s.tainted.Load() {
		s.groupMu.Lock()
		s.final = hex.EncodeToString(s.digest.Sum(nil))
		s.finalStats = s.stats
		s.groupMu.Unlock()
	} else {
		// A tainted trace keeps nothing but the reason it was forfeited.
		s.taintMu.Lock()
		reason := s.taintReason
		s.taintMu.Unlock()
		if reason == "" {
			reason = "trace tainted: a group task exited on an escape path"
		}
		s.groupMu.Lock()
		s.finalStats = TraceStats{TaintReason: reason}
		s.groupMu.Unlock()
	}
	s.finalized.Store(true)
	close(s.groupDone)
}

// record hashes one trace record and forwards it to the attached recorder,
// if any. The digest and the recorder consume the identical record by
// construction — AppendHash is the single encoding definition.
func (s *stepper) record(r *TraceRecord) {
	s.digest.Write(r.AppendHash(s.buf[:0]))
	if s.rec != nil {
		s.rec.Record(*r)
	}
}

// recordEvent hashes one delivered event into the trace: kind, timestamp,
// sequence number and the message envelope's identifying fields. Payloads are
// deliberately excluded — rendering arbitrary values could hash pointer
// representations. Called only by the dispatcher, before delivery.
func (s *stepper) recordEvent(ev *event) {
	if !s.tracing.Load() || s.finalized.Load() {
		return
	}
	s.stats.Events++
	r := TraceRecord{Op: TraceOpEvent, Kind: byte(ev.kind), At: int64(ev.at), Seq: ev.seq}
	switch ev.kind {
	case evMessage:
		s.stats.Messages++
		r.From = uint64(ev.msg.From)
		r.To = uint64(ev.msg.To)
		r.Instance = ev.msg.Instance
		r.Type = ev.msg.Type
		r.SentAt = ev.sentAt
	case evTimer:
		s.stats.Timers++
		// The run-local lease id, not ev.tgen: gen counts leases of a
		// globally pooled timer core, so it depends on what earlier networks
		// in the process did with that core — hashing it would make the
		// fingerprint process-history-dependent.
		r.Tid = ev.tid
	case evCrash:
		s.stats.Crashes++
		r.To = uint64(ev.msg.To)
	}
	s.record(&r)
}

// recordGrant hashes one task step grant. Called only by the dispatcher.
func (s *stepper) recordGrant(t *Task) {
	if !s.tracing.Load() || s.finalized.Load() {
		return
	}
	s.stats.Grants++
	s.record(&TraceRecord{Op: TraceOpGrant, Task: t.id, Proc: uint64(t.ep.id)})
}

// recordExit hashes a clean task exit. Called by the exiting task while it
// still holds the token.
func (s *stepper) recordExit(t *Task) {
	if !s.tracing.Load() || s.finalized.Load() {
		return
	}
	s.record(&TraceRecord{Op: TraceOpExit, Task: t.id, Proc: uint64(t.ep.id), Group: t.group})
}

// StepMode reports whether this network runs under the deterministic
// goroutine-step scheduler (the default) as opposed to the free-running
// ablation (WithFreeRunning) or real-time mode.
func (nw *Network) StepMode() bool { return nw.stepper != nil }

// Go spawns fn as a scheduler-visible task owned by ep: the goroutine takes
// steps only when granted by the dispatcher, parking in Await between them.
// In free-running mode fn runs as a plain goroutine and receives a nil task
// (all Task methods and TaskFrom degrade to no-ops), so call sites are
// mode-agnostic. The returned task is nil in free-running mode.
func (nw *Network) Go(ep *Endpoint, name string, fn func(*Task)) *Task {
	return nw.spawn(ep, name, false, fn)
}

// GoGroup is Go for tasks belonging to the trace group declared by
// TraceGroup: the exit of the last group task is the trace boundary.
func (nw *Network) GoGroup(ep *Endpoint, name string, fn func(*Task)) *Task {
	return nw.spawn(ep, name, true, fn)
}

func (nw *Network) spawn(ep *Endpoint, name string, group bool, fn func(*Task)) *Task {
	if nw.stepper == nil {
		go fn(nil)
		return nil
	}
	t := nw.stepper.newTask(ep, name, group)
	ep.registerTask(t)
	nw.stepper.enqueue(t)
	go func() {
		t.block(nil)
		fn(t)
		t.exit()
	}()
	return t
}

// TraceGroup arms trace recording and declares the number of GoGroup tasks
// whose collective exit ends the trace. Call it before spawning them (the
// scenario harness spawns its runners under Freeze, so none can exit early).
// A no-op in free-running mode.
func (nw *Network) TraceGroup(n int) {
	if nw.stepper == nil {
		return
	}
	nw.stepper.beginTraceGroup(n)
}

// TraceResult blocks until the trace group has exited and returns the trace
// fingerprint with its shape counters. The fingerprint is the hex SHA-256
// over the (event, grant, exit) record stream up to the last group task's
// exit — byte-identical across runs of an identical seeded configuration. It
// is empty when the run was tainted by a wall-clock escape (a timeout cut the
// run at a nondeterministic point) — the returned stats then carry only
// TaintReason, naming the escape — and immediately empty in free-running
// mode or when no trace group was declared.
func (nw *Network) TraceResult() (string, TraceStats) {
	s := nw.stepper
	if s == nil || !s.tracing.Load() {
		return "", TraceStats{}
	}
	<-s.groupDone
	s.groupMu.Lock()
	defer s.groupMu.Unlock()
	return s.final, s.finalStats
}

// registerTask records t on its endpoint so a crash (or close) can wake it:
// the woken task observes Context().Err() != nil on its next granted step and
// unwinds deterministically — crashes at decision moments replay exactly.
func (ep *Endpoint) registerTask(t *Task) {
	ep.mu.Lock()
	ep.tasks = append(ep.tasks, t)
	ep.mu.Unlock()
}

// wakeTasks wakes every task registered on the endpoint.
func (ep *Endpoint) wakeTasks() {
	ep.mu.Lock()
	tasks := make([]*Task, len(ep.tasks))
	copy(tasks, ep.tasks)
	ep.mu.Unlock()
	for _, t := range tasks {
		t.Wake()
	}
}

// Watch registers t to be woken whenever the dispatcher pushes a message into
// this process's mailbox for the instance, replacing the Subscribe forwarder
// (whose goroutine is invisible to the step scheduler) with the
// Watch + TryRecv-drain + Await idiom:
//
//	in.Watch(t)
//	for {
//		for { m, ok := in.TryRecv(); ... }
//		if done() { return }
//		t.Await(ctx)
//	}
//
// Watch(nil) clears the watcher. Do not mix with Subscribe on one instance.
func (in Instance) Watch(t *Task) {
	b := in.box()
	b.mu.Lock()
	b.watcher = t
	b.mu.Unlock()
}
