package net

import (
	"testing"
	"time"
)

func TestVirtualTimerFiresWithoutWallClockWait(t *testing.T) {
	nw := NewNetwork(1)
	defer nw.Close()
	start := time.Now()
	tm := nw.Endpoint(0).NewTimer(time.Hour) // an hour of virtual time
	select {
	case at := <-tm.C:
		if at < time.Hour {
			t.Fatalf("fired at virtual %v, before its deadline", at)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("virtual timer never fired")
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("an hour of virtual time took %v of wall clock", wall)
	}
	if now := nw.VirtualNow(); now < time.Hour {
		t.Fatalf("VirtualNow = %v after the timer fired", now)
	}
}

func TestVirtualTickerFiresAtIncreasingTimes(t *testing.T) {
	nw := NewNetwork(1)
	defer nw.Close()
	ticker := nw.Endpoint(0).NewTicker(3 * time.Millisecond)
	defer ticker.Stop()
	var prev time.Duration
	for i := 0; i < 50; i++ {
		select {
		case at := <-ticker.C:
			if at <= prev {
				t.Fatalf("tick %d at %v, not after previous %v", i, at, prev)
			}
			prev = at
		case <-time.After(5 * time.Second):
			t.Fatalf("ticker stalled at tick %d", i)
		}
	}
}

// Messages in flight are delivered before virtual time jumps to a later timer
// deadline: the event heap orders deliveries and fires globally.
func TestPendingMessagesBeatLaterTimers(t *testing.T) {
	nw := NewNetwork(2, WithDelays(50*time.Microsecond, 100*time.Microsecond))
	defer nw.Close()
	inbox := nw.Endpoint(1).Subscribe("beat")
	tm := nw.Endpoint(0).NewTimer(10 * time.Millisecond)
	nw.Endpoint(0).Send(1, "beat", "m", nil)
	select {
	case <-tm.C:
	case <-time.After(5 * time.Second):
		t.Fatalf("timer never fired")
	}
	// By the time a 10ms timer fires, the 100µs message must already be
	// waiting in the mailbox.
	select {
	case <-inbox:
	case <-time.After(time.Second):
		t.Fatalf("message was leapfrogged by a later timer")
	}
}

// A message's delay consumes virtual time from the moment it is sent: a
// delay larger than a pending timer deadline lands after that timer fires,
// even when the virtual clock has already advanced far. (Messages stamped
// with their raw delay instead of now+delay would deliver "in the past" and
// delay distributions could never outlast a timeout.)
func TestLargeDelayLandsAfterTimer(t *testing.T) {
	nw := NewNetwork(2, WithDelays(50*time.Millisecond, 50*time.Millisecond))
	defer nw.Close()
	inbox := nw.Endpoint(1).Subscribe("slow")

	// Advance the virtual clock well past the message delay magnitude.
	warm := nw.Endpoint(0).NewTimer(100 * time.Millisecond)
	select {
	case <-warm.C:
	case <-time.After(5 * time.Second):
		t.Fatalf("warm-up timer never fired")
	}

	sendAt := nw.VirtualNow()
	nw.Endpoint(0).Send(1, "slow", "m", nil)
	select {
	case <-inbox:
	case <-time.After(5 * time.Second):
		t.Fatalf("message never delivered")
	}
	if now := nw.VirtualNow(); now < sendAt+50*time.Millisecond {
		t.Fatalf("50ms-delay message delivered at vnow=%v, sent at %v: delay consumed no virtual time", now, sendAt)
	}
}

// A crashed process's timers are stopped automatically; an abandoned,
// never-consumed ticker must not freeze virtual time for the survivors.
func TestCrashReleasesEndpointTimers(t *testing.T) {
	nw := NewNetwork(2)
	defer nw.Close()
	nw.Endpoint(0).NewTicker(time.Millisecond) // never consumed
	nw.Crash(0)
	survivor := nw.Endpoint(1).NewTimer(5 * time.Millisecond)
	select {
	case <-survivor.C:
	case <-time.After(5 * time.Second):
		t.Fatalf("survivor's timer starved: crashed process's ticker still holds virtual time")
	}
}

func TestTimerStopIsIdempotent(t *testing.T) {
	nw := NewNetwork(1)
	defer nw.Close()
	ticker := nw.Endpoint(0).NewTicker(time.Millisecond)
	<-ticker.C
	ticker.Stop()
	ticker.Stop()
	// After Stop the dispatcher must still make progress.
	tm := nw.NewTimer(time.Millisecond)
	select {
	case <-tm.C:
	case <-time.After(5 * time.Second):
		t.Fatalf("dispatcher wedged after ticker Stop")
	}
}

// WithRealTime preserves wall-clock fidelity: delays and timer deadlines are
// actually waited out.
func TestRealTimeModeWaitsWallClock(t *testing.T) {
	nw := NewNetwork(2, WithRealTime(), WithDelays(5*time.Millisecond, 5*time.Millisecond))
	defer nw.Close()
	inbox := nw.Endpoint(1).Subscribe("rt")
	start := time.Now()
	nw.Endpoint(0).Send(1, "rt", "m", nil)
	select {
	case <-inbox:
	case <-time.After(5 * time.Second):
		t.Fatalf("real-time delivery never happened")
	}
	if wall := time.Since(start); wall < 4*time.Millisecond {
		t.Fatalf("5ms real-time delay delivered after only %v", wall)
	}

	start = time.Now()
	tm := nw.Endpoint(0).NewTimer(10 * time.Millisecond)
	select {
	case <-tm.C:
	case <-time.After(5 * time.Second):
		t.Fatalf("real-time timer never fired")
	}
	if wall := time.Since(start); wall < 8*time.Millisecond {
		t.Fatalf("10ms real-time timer fired after only %v", wall)
	}
}
