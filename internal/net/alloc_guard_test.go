//go:build !race

package net

import (
	"testing"
	"time"

	"weakestfd/internal/model"
)

// Allocation-regression guards for the delivery fast path. They run only
// without the race detector (its instrumentation allocates), and CI invokes
// them through the dedicated no-race test step. The ceilings are the
// contract the large-n fast path was built to:
//
//   - steady-state unicast delivery — enqueue, dispatch, mailbox push,
//     TryRecv — allocates nothing once the ring and event heap are warm;
//   - a broadcast enqueue amortises to at most one allocation per call
//     (zero in steady state; the budget of one absorbs a late event-heap
//     doubling when the dispatcher falls behind a sustained storm).

// warmNetwork stands up a 2-process network and runs traffic until the
// mailbox ring and event heap have reached steady-state capacity.
func warmNetwork(t *testing.T) (*Network, Instance, Instance) {
	t.Helper()
	nw := NewNetwork(2, WithSeed(1), WithDelays(0, 10*time.Microsecond))
	t.Cleanup(nw.Close)
	src := nw.Endpoint(0).Instance("guard")
	dst := nw.Endpoint(1).Instance("guard")
	for i := 0; i < 256; i++ {
		src.SendAux(1, "w", int64(i), 0, nil)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got := 0; got < 256; {
		if _, ok := dst.TryRecv(); ok {
			got++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatal("warmup never drained")
		}
	}
	return nw, src, dst
}

func TestSteadyStateDeliveryAllocationFree(t *testing.T) {
	_, src, dst := warmNetwork(t)
	avg := testing.AllocsPerRun(50, func() {
		src.SendAux(1, "m", 7, 0, nil)
		for {
			if _, ok := dst.TryRecv(); ok {
				return
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state delivery allocates %v objects per message, want 0", avg)
	}
}

func TestBroadcastEnqueueAmortisesToOneAllocation(t *testing.T) {
	const n = 50
	nw := NewNetwork(n, WithSeed(1), WithDelays(0, 10*time.Microsecond))
	defer nw.Close()
	// Handler-mode sinks: delivery costs no ring growth and no goroutines,
	// so the measurement isolates the enqueue side.
	sink := nopHandler{}
	for p := 0; p < n; p++ {
		nw.Endpoint(model.ProcessID(p)).Instance("storm").Handle(sink)
	}
	src := nw.Endpoint(0).Instance("storm")
	for i := 0; i < 64; i++ { // warm the event heap
		src.BroadcastAux("w", int64(i), 0, nil)
	}
	avg := testing.AllocsPerRun(200, func() {
		src.BroadcastAux("b", 9, 0, nil)
	})
	if avg > 1 {
		t.Fatalf("broadcast enqueue allocates %v objects per call, want <= 1 amortised", avg)
	}
}

type nopHandler struct{}

func (nopHandler) HandleMessage(Message) {}
