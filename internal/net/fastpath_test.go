package net

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"weakestfd/internal/model"
)

// waitQuiesced blocks until every sent message is accounted for as delivered
// or dropped — the finite workloads of these tests have all landed once the
// books balance.
func waitQuiesced(t *testing.T, nw *Network) {
	t.Helper()
	m := nw.Metrics()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sent, done := m.Get("msgs.sent"), m.Get("msgs.delivered")+m.Get("msgs.dropped")
		if sent == done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("network never quiesced: sent=%d accounted=%d", sent, done)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// ---- batched vs serial broadcast: white-box schedule equality ----

// broadcastSchedule drives a fixed mixed workload — broadcasts from rotating
// senders interleaved with unicasts — on a fresh network and returns, per
// recipient, the exact delivery sequence as "from/type@sentAt" strings.
func broadcastSchedule(t *testing.T, seed int64, drop float64, opts ...Option) [][]string {
	t.Helper()
	const n, rounds = 5, 12
	all := append([]Option{WithSeed(seed), WithDropRate(drop)}, opts...)
	nw := NewNetwork(n, all...)
	defer nw.Close()
	nw.Freeze()
	for r := 0; r < rounds; r++ {
		nw.Endpoint(model.ProcessID(r % n)).Broadcast("sched", "b", r)
		nw.Endpoint(model.ProcessID((r + 1) % n)).Send(model.ProcessID((r+2)%n), "sched", "u", r)
	}
	nw.Thaw()
	// Let the dispatcher drain, then collect what each recipient saw. The
	// workload is finite, so a quiescent queue means delivery is complete.
	waitQuiesced(t, nw)
	out := make([][]string, n)
	for p := 0; p < n; p++ {
		for {
			msg, ok := nw.Endpoint(model.ProcessID(p)).TryRecv("sched")
			if !ok {
				break
			}
			out[p] = append(out[p], fmt.Sprintf("%v/%s@%d", msg.From, msg.Type, msg.SentAt))
		}
	}
	return out
}

// The batched broadcast enqueue must produce byte-for-byte the schedule of
// the serial per-recipient loop: same RNG draws in the same order (drop draw
// first where links are lossy, then the delay draw), same (time, seq) slots.
// This is the white-box half of the determinism contract; the scenario
// package pins the same property end-to-end on Result.Fingerprint.
func TestBatchedBroadcastMatchesSerialSchedule(t *testing.T) {
	for _, drop := range []float64{0, 0.3} {
		for _, seed := range []int64{1, 7, 42, 99} {
			t.Run(fmt.Sprintf("drop=%v/seed=%d", drop, seed), func(t *testing.T) {
				batched := broadcastSchedule(t, seed, drop)
				serial := broadcastSchedule(t, seed, drop, WithSerialBroadcast())
				if len(batched) != len(serial) {
					t.Fatalf("recipient counts differ: %d vs %d", len(batched), len(serial))
				}
				for p := range batched {
					if got, want := fmt.Sprint(batched[p]), fmt.Sprint(serial[p]); got != want {
						t.Fatalf("recipient %d schedules diverge:\nbatched: %s\nserial:  %s", p, got, want)
					}
				}
			})
		}
	}
}

// ---- handler-mode delivery ----

type recordingHandler struct {
	mu   sync.Mutex
	msgs []Message
	inst Instance // non-zero: reply to every "ping" with a "pong"
}

func (h *recordingHandler) HandleMessage(msg Message) {
	h.mu.Lock()
	h.msgs = append(h.msgs, msg)
	h.mu.Unlock()
	if h.inst != (Instance{}) && msg.Type == "ping" {
		h.inst.SendAux(msg.From, "pong", msg.Aux, 0, nil)
	}
}

func (h *recordingHandler) snapshot() []Message {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Message(nil), h.msgs...)
}

// Handler mode delivers synchronously in schedule order, bypassing the ring,
// and a handler may send (sends only enqueue, so the dispatcher never
// deadlocks on its own delivery).
func TestHandlerModeDeliversInOrderAndMaySend(t *testing.T) {
	nw := NewNetwork(2, WithSeed(3))
	defer nw.Close()
	server := nw.Endpoint(1).Instance("rpc")
	h := &recordingHandler{inst: server}
	server.Handle(h)
	client := nw.Endpoint(0).Instance("rpc")
	replies := client.Subscribe()

	const k = 50
	for i := 0; i < k; i++ {
		client.SendAux(1, "ping", int64(i), 0, nil)
	}
	seen := make(map[int64]bool, k)
	for i := 0; i < k; i++ {
		select {
		case msg := <-replies:
			if msg.Type != "pong" {
				t.Fatalf("unexpected reply type %q", msg.Type)
			}
			seen[msg.Aux] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("got %d/%d replies", i, k)
		}
	}
	if len(seen) != k {
		t.Fatalf("distinct replies = %d, want %d", len(seen), k)
	}
	if got := len(h.snapshot()); got != k {
		t.Fatalf("handler saw %d messages, want %d", got, k)
	}
}

// A nil Handle restores buffered delivery: messages pushed after the reset
// land in the ring and are readable through TryRecv.
func TestHandlerNilRestoresBuffering(t *testing.T) {
	nw := NewNetwork(2, WithSeed(4))
	defer nw.Close()
	inst := nw.Endpoint(1).Instance("hb")
	h := &recordingHandler{}
	inst.Handle(h)
	nw.Endpoint(0).Instance("hb").Send(1, "a", nil)
	waitQuiesced(t, nw)
	if got := len(h.snapshot()); got != 1 {
		t.Fatalf("handler saw %d messages, want 1", got)
	}
	inst.Handle(nil)
	nw.Endpoint(0).Instance("hb").Send(1, "b", nil)
	waitQuiesced(t, nw)
	msg, ok := inst.TryRecv()
	if !ok || msg.Type != "b" {
		t.Fatalf("buffered delivery after Handle(nil): ok=%v msg=%v", ok, msg)
	}
	if got := len(h.snapshot()); got != 1 {
		t.Fatalf("handler saw %d messages after unregistering, want 1", got)
	}
}

// ---- mailbox fast-path edge cases ----

// Concurrent pushes racing TryRecv from several consumer goroutines must
// neither lose nor duplicate messages. Run under -race this doubles as the
// memory-model check of the lock-light push/tryPop pair.
func TestPushRacingTryRecvLosesNothing(t *testing.T) {
	nw := NewNetwork(2, WithSeed(5), WithDelays(0, 10*time.Microsecond))
	defer nw.Close()
	inst := nw.Endpoint(1).Instance("race")

	const k = 2000
	var got sync.Map
	var count atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if msg, ok := inst.TryRecv(); ok {
					if _, dup := got.LoadOrStore(msg.Aux, true); dup {
						t.Errorf("duplicate delivery of %d", msg.Aux)
						return
					}
					count.Add(1)
					continue
				}
				select {
				case <-stop:
					// stop closes only after every message is pushed, so an
					// empty ring here means the rest is in other workers'
					// hands or already counted; anything pushed between our
					// last look and the close is caught by the main
					// goroutine's final drain.
					return
				default:
				}
			}
		}()
	}
	src := nw.Endpoint(0).Instance("race")
	for i := 0; i < k; i++ {
		src.SendAux(1, "m", int64(i), 0, nil)
	}
	waitQuiesced(t, nw)
	close(stop)
	wg.Wait()
	// Drain whatever the workers' final sweeps left behind.
	for {
		if _, ok := inst.TryRecv(); !ok {
			break
		}
		count.Add(1)
	}
	if count.Load() != k {
		t.Fatalf("received %d/%d messages", count.Load(), k)
	}
}

// A 1000-sender fan-in floods one mailbox far past its initial ring: the
// ring must wrap and grow without reordering (zero delay keeps the schedule
// at pure enqueue order, so FIFO per sender is checkable exactly).
func TestLargeFanInRingGrowthKeepsPerSenderFIFO(t *testing.T) {
	const n, per = 1000, 3
	nw := NewNetwork(n, WithSeed(6), WithDelays(0, 0))
	defer nw.Close()
	sink := nw.Endpoint(0).Instance("fanin")
	nw.Freeze()
	for r := 0; r < per; r++ {
		for p := 1; p < n; p++ {
			nw.Endpoint(model.ProcessID(p)).Instance("fanin").SendAux(0, "m", int64(r), 0, nil)
		}
	}
	nw.Thaw()
	waitQuiesced(t, nw)
	last := make(map[int]int64, n)
	total := 0
	for {
		msg, ok := sink.TryRecv()
		if !ok {
			break
		}
		total++
		from := int(msg.From)
		if prev, seen := last[from]; seen && msg.Aux <= prev {
			t.Fatalf("per-sender FIFO broken for p%d: %d after %d", from, msg.Aux, prev)
		}
		last[from] = msg.Aux
	}
	if want := (n - 1) * per; total != want {
		t.Fatalf("received %d/%d messages", total, want)
	}
}

// Subscribe after a flood must surface everything already buffered: the
// subscription forwarder starts from the ring's current contents, not from
// the next push.
func TestSubscribeAfterFloodDeliversBacklog(t *testing.T) {
	nw := NewNetwork(2, WithSeed(7))
	defer nw.Close()
	const k = 500
	for i := 0; i < k; i++ {
		nw.Endpoint(0).Send(1, "late", "m", i)
	}
	waitQuiesced(t, nw)
	inbox := nw.Endpoint(1).Subscribe("late")
	seen := 0
	for seen < k {
		select {
		case <-inbox:
			seen++
		case <-time.After(5 * time.Second):
			t.Fatalf("subscriber saw %d/%d backlogged messages", seen, k)
		}
	}
}

// ---- pooled timer cores ----

// A stopped timer's core returns to the pool and is leased again with a
// bumped generation; the recycled lease must fire for its new owner and stay
// deaf to anything scheduled under the old one.
func TestTimerCoreReuseAcrossLeases(t *testing.T) {
	nw := NewNetwork(1, WithSeed(8))
	defer nw.Close()

	first := nw.NewTimer(time.Millisecond)
	core, gen := first.core, first.gen
	select {
	case <-first.C:
	case <-time.After(5 * time.Second):
		t.Fatal("first lease never fired")
	}
	// One-shot timers end their lease after firing; the feeder re-pools the
	// core asynchronously, so poll briefly for the recycle.
	deadline := time.Now().Add(5 * time.Second)
	var second *Timer
	for {
		second = nw.NewTimer(time.Millisecond)
		if second.core == core {
			break
		}
		second.Stop()
		if time.Now().After(deadline) {
			t.Skip("pool did not hand the same core back (other tests compete for the global pool)")
		}
		time.Sleep(time.Millisecond)
	}
	if second.gen <= gen {
		t.Fatalf("recycled lease generation %d not past %d", second.gen, gen)
	}
	select {
	case <-second.C:
	case <-time.After(5 * time.Second):
		t.Fatal("recycled lease never fired")
	}
}

// Stopping a lease must not leak a fire into the next lease of the same
// core: the generation guard plus the endLease drain keep a heavy
// create/stop churn silent.
func TestStoppedLeasesNeverCrossTalk(t *testing.T) {
	nw := NewNetwork(1, WithSeed(9))
	defer nw.Close()
	for i := 0; i < 200; i++ {
		tm := nw.NewTimer(time.Microsecond)
		tm.Stop()
		select {
		case at, ok := <-tm.C:
			if ok {
				t.Fatalf("iteration %d: stopped lease fired at %v", i, at)
			}
		default:
		}
	}
	// After the churn a fresh lease still works.
	tm := nw.NewTimer(time.Millisecond)
	select {
	case <-tm.C:
	case <-time.After(5 * time.Second):
		t.Fatal("fresh lease after churn never fired")
	}
}
