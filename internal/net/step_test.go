package net

import (
	"context"
	"strings"
	"testing"
	"time"

	"weakestfd/internal/model"
)

// runPingPong stands up a two-process network, runs a traced ping-pong of
// fixed length between two scheduler-visible tasks, and returns the trace
// fingerprint with its counters. Under WithFreeRunning the same code runs as
// plain goroutines (nil tasks) and the trace degrades to the empty
// fingerprint — the mode-agnostic call-site contract the protocol packages
// rely on.
func runPingPong(t *testing.T, opts ...Option) (string, TraceStats) {
	t.Helper()
	nw := NewNetwork(2, append([]Option{WithSeed(9), WithDelays(time.Millisecond, 5*time.Millisecond)}, opts...)...)
	defer nw.Close()
	nw.Freeze()

	const rounds = 5
	done := make(chan struct{}, 2)
	player := func(ep *Endpoint, peer model.ProcessID, opens bool) func(*Task) {
		return func(task *Task) {
			defer func() { done <- struct{}{} }()
			in := ep.Instance("pp")
			if task != nil {
				in.Watch(task)
				defer in.Watch(nil)
			}
			// The opener serves rounds balls and counts the echoes; the
			// responder echoes every ball it receives. Both sides see exactly
			// rounds messages, so neither parks waiting on a reply that will
			// never come.
			if opens {
				ep.Send(peer, "pp", "ball", 0)
			}
			for got := 0; got < rounds; {
				if m, ok := in.TryRecv(); ok {
					got++
					if opens && got < rounds {
						ep.Send(peer, "pp", "ball", m.Payload.(int)+1)
					} else if !opens {
						ep.Send(peer, "pp", "echo", m.Payload.(int))
					}
					continue
				}
				if task != nil {
					task.Await(nil)
				} else {
					time.Sleep(100 * time.Microsecond)
				}
			}
		}
	}
	nw.TraceGroup(2)
	nw.GoGroup(nw.Endpoint(0), "pp0", player(nw.Endpoint(0), 1, true))
	nw.GoGroup(nw.Endpoint(1), "pp1", player(nw.Endpoint(1), 0, false))
	nw.Thaw()
	fp, st := nw.TraceResult()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("ping-pong player %d never finished", i)
		}
	}
	return fp, st
}

// TestStepTraceDeterministic: two identically-seeded step-mode runs hash to
// byte-identical trace fingerprints, and the counters agree.
func TestStepTraceDeterministic(t *testing.T) {
	fp1, st1 := runPingPong(t)
	fp2, st2 := runPingPong(t)
	if fp1 == "" {
		t.Fatal("step-mode run produced no trace fingerprint")
	}
	if fp1 != fp2 {
		t.Fatalf("trace fingerprints diverged:\n%s\n%s", fp1, fp2)
	}
	if st1 != st2 {
		t.Fatalf("trace counters diverged: %+v vs %+v", st1, st2)
	}
	if st1.Messages == 0 || st1.Grants == 0 {
		t.Fatalf("trace counters implausible: %+v", st1)
	}
}

// TestFreeRunningAblationHasNoTrace: the ablation runs the same code to the
// same outcome but pins nothing — empty fingerprint, zero counters.
func TestFreeRunningAblationHasNoTrace(t *testing.T) {
	fp, st := runPingPong(t, WithFreeRunning())
	if fp != "" || st != (TraceStats{}) {
		t.Fatalf("free-running run reported a trace: %q %+v", fp, st)
	}
}

// TestFreeRunningNilTaskContract: in free-running mode Go returns nil, fn
// receives nil, and every Task method (plus TaskFrom) is a safe no-op on nil —
// the branch-free degradation the converted protocol loops depend on.
func TestFreeRunningNilTaskContract(t *testing.T) {
	nw := NewNetwork(1, WithFreeRunning())
	defer nw.Close()
	if nw.StepMode() {
		t.Fatal("WithFreeRunning network still reports step mode")
	}
	got := make(chan *Task, 1)
	if tk := nw.Go(nw.Endpoint(0), "noop", func(task *Task) { got <- task }); tk != nil {
		t.Fatalf("Go returned non-nil task in free-running mode: %v", tk)
	}
	select {
	case task := <-got:
		if task != nil {
			t.Fatalf("fn received non-nil task: %v", task)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("free-running fn never ran")
	}
	var nilTask *Task
	nilTask.Wake() // must not panic
	if TaskFrom(context.Background()) != nil || TaskFrom(nil) != nil {
		t.Fatal("TaskFrom invented a task")
	}
	ctx, release := AdoptTask(context.Background(), nw.Endpoint(0), "adopt")
	defer release()
	if TaskFrom(ctx) != nil {
		t.Fatal("AdoptTask adopted in free-running mode")
	}
	if fp, st := nw.TraceResult(); fp != "" || st != (TraceStats{}) {
		t.Fatalf("TraceResult on free-running network = %q %+v", fp, st)
	}
}

// TestEscapeTaintsTrace: a wall-clock escape (context cancellation while
// parked) resumes the task without the token and forfeits the fingerprint —
// the cut point is not reproducible, so the trace must not pretend it is.
func TestEscapeTaintsTrace(t *testing.T) {
	nw := NewNetwork(1, WithSeed(1))
	defer nw.Close()
	nw.Freeze()
	nw.TraceGroup(1)
	ctx, cancel := context.WithCancel(context.Background())
	parked := make(chan struct{})
	nw.GoGroup(nw.Endpoint(0), "waiter", func(task *Task) {
		close(parked)
		for ctx.Err() == nil {
			task.Await(ctx)
		}
	})
	nw.Thaw()
	<-parked
	time.Sleep(10 * time.Millisecond) // let it park with no wake pending
	cancel()
	fp, st := nw.TraceResult()
	if fp != "" {
		t.Fatalf("escaped run kept a fingerprint: %q", fp)
	}
	if st.TaintReason == "" {
		t.Fatal("escaped run surfaced no taint reason")
	}
	if !strings.Contains(st.TaintReason, `"waiter"`) || !strings.Contains(st.TaintReason, "process 0") {
		t.Fatalf("taint reason does not name the escaping task: %q", st.TaintReason)
	}
	st.TaintReason = ""
	if st != (TraceStats{}) {
		t.Fatalf("escaped run kept trace counters: %+v", st)
	}
}

// TestWakeCreditNotLost: a Wake issued while the task is running (between its
// condition check and the park) makes the next Await return immediately — the
// no-lost-wakeup half of the park protocol.
func TestWakeCreditNotLost(t *testing.T) {
	nw := NewNetwork(1, WithSeed(2))
	defer nw.Close()
	nw.Freeze()
	nw.TraceGroup(1)
	ran := make(chan struct{})
	nw.GoGroup(nw.Endpoint(0), "selfwake", func(task *Task) {
		task.Wake()     // credit issued while running
		task.Await(nil) // must consume the credit, not park forever
		close(ran)
	})
	nw.Thaw()
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("pending wake credit was lost: Await parked forever")
	}
	if fp, _ := nw.TraceResult(); fp == "" {
		t.Fatal("clean self-waking run lost its trace")
	}
}
